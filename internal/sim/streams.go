package sim

// StreamNames is the module-wide registry of named RNG streams and
// stream families (a family is a fmt.Sprintf format deriving one
// stream per instance, e.g. "vm%d"). Substream derivation hashes the
// name into the seed (see RNG.Stream), so two sites deriving the same
// name from the same seed draw identical bit sequences — silent
// correlation. The taichilint streamdraw rule enforces that every
// derived name appears here and every entry is actually derived, so
// this list is the single place to scan when adding a stream and
// picking a name that collides with nothing.
var StreamNames = []string{
	// Cluster control plane and request lifecycle.
	"cluster",
	"cluster.admit",
	"cluster.requeue",
	"cluster.retry",
	"cluster.shed",
	"mon%d",
	"vm%d",
	"vm%d.retry%d",
	"vmdel%d",
	// Core scheduling and recovery.
	"core.overload",
	"core.recovery",
	// Cluster placement and live migration.
	"cluster.vmload%d",
	"migrate.pick",
	"place.arrive",
	"place.choose",
	// Fault injection.
	"faults.coord",
	"faults.cp",
	"faults.exit",
	"faults.ipi",
	"faults.lock",
	"faults.offline",
	"faults.probe",
	"faults.spurious",
	// Workload generators.
	"bg.net%d",
	"bg.stor%d",
	"crr",
	"fio",
	"mysql",
	"nginx",
	"ping",
	"rr",
	"stream",
	// Experiment harnesses (figures and tables).
	"chaos.cp%d",
	"chaosrec.cp%d",
	"cp%d",
	"cpchurn",
	"eco%d",
	"exp.mon%d",
	"fig14.phase",
	"fig15.phase",
	"fig16.phase",
	"fig3.core%d",
	"fig5.synth",
	"rescue.phase",
	"synth%d",
	// Command-line tools and examples.
	"churn",
	"churn.mon%d",
	"dyndp.job%d",
	"job%d",
	"probe",
	"qs.job%d",
	"sim.cp",
	"task%d",
}
