package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random source. Each simulated component derives
// its own named stream from the experiment seed so that adding a component
// (or reordering draws within one component) does not perturb the draws
// seen by every other component — a standard trick for reproducible
// discrete-event simulation.
type RNG struct {
	seed int64
}

// NewRNG returns a root source for the given experiment seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Stream derives an independent, deterministic sub-stream identified by
// name. The same (seed, name) pair always yields the same sequence.
func (r *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	sub := int64(h.Sum64()) ^ (r.seed * int64(0x9E3779B97F4A7C15>>1))
	return rand.New(rand.NewSource(sub))
}

// Exponential draws from an exponential distribution with the given mean.
// It is provided here (rather than only in internal/dist) because arrival
// processes inside the engine's own tests need it.
func Exponential(r *rand.Rand, mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	d := Duration(float64(mean) * r.ExpFloat64())
	if d < 1 {
		d = 1
	}
	return d
}

// Uniform draws uniformly from [lo, hi].
func Uniform(r *rand.Rand, lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)+1))
}

// Jitter returns d perturbed multiplicatively by up to ±frac (e.g. 0.1 for
// ±10%), never returning less than 1 ns.
func Jitter(r *rand.Rand, d Duration, frac float64) Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	out := Duration(math.Round(float64(d) * f))
	if out < 1 {
		out = 1
	}
	return out
}
