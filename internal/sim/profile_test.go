package sim

import (
	"strings"
	"testing"
)

func TestProfileDispatchCounts(t *testing.T) {
	e := NewEngine()
	p := NewProfile()
	e.EnableProfile(p)
	for i := 0; i < 5; i++ {
		e.ScheduleNamed(Duration(i)*Microsecond, "tick", func() {})
	}
	e.ScheduleNamed(10*Microsecond, "tock", func() {})
	e.Schedule(20*Microsecond, func() {}) // unnamed → "(anon)"
	e.RunUntilIdle()

	classes := p.Dispatch()
	if len(classes) != 3 {
		t.Fatalf("classes = %+v, want 3", classes)
	}
	// Name-sorted: (anon), tick, tock.
	want := []struct {
		name  string
		count uint64
	}{{"(anon)", 1}, {"tick", 5}, {"tock", 1}}
	for i, w := range want {
		if classes[i].Name != w.name || classes[i].Count != w.count {
			t.Errorf("class %d = %+v, want %s=%d", i, classes[i], w.name, w.count)
		}
		if classes[i].WallNs != 0 {
			t.Errorf("class %d has wall attribution %d with nil Clock", i, classes[i].WallNs)
		}
	}
}

func TestProfileHeapHighWater(t *testing.T) {
	e := NewEngine()
	p := NewProfile()
	e.EnableProfile(p)
	for i := 0; i < 7; i++ {
		e.Schedule(Duration(i+1)*Microsecond, func() {})
	}
	e.RunUntilIdle()
	if p.HeapHighWater() != 7 {
		t.Errorf("heap high-water = %d, want 7", p.HeapHighWater())
	}
}

func TestProfileWallAttribution(t *testing.T) {
	e := NewEngine()
	p := NewProfile()
	// A fake monotonic clock: advances 3ns per reading, so each dispatch
	// is attributed exactly 3ns without touching a real wall clock.
	var now int64
	p.Clock = func() int64 { now += 3; return now }
	e.EnableProfile(p)
	e.ScheduleNamed(Microsecond, "work", func() {})
	e.ScheduleNamed(2*Microsecond, "work", func() {})
	e.RunUntilIdle()
	classes := p.Dispatch()
	if len(classes) != 1 || classes[0].WallNs != 6 {
		t.Errorf("dispatch = %+v, want work with 6ns attributed", classes)
	}
	// Describe never renders wall attribution — it must stay
	// byte-identical between profiled runs on different hosts.
	if strings.Contains(p.Describe(), "wall") {
		t.Errorf("Describe leaked wall attribution:\n%s", p.Describe())
	}
}

func TestProfileDescribeDeterministic(t *testing.T) {
	run := func() string {
		e := NewEngine()
		p := NewProfile()
		e.EnableProfile(p)
		e.ScheduleNamed(Microsecond, "b", func() {})
		e.ScheduleNamed(2*Microsecond, "a", func() {})
		e.ScheduleNamed(3*Microsecond, "a", func() {})
		e.RunUntilIdle()
		return p.Describe()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("Describe differs between identical runs:\n%s\nvs\n%s", a, b)
	}
	want := "sim-profile: dispatched=3 classes=2 heap-hwm=3\n" +
		"sim-profile.dispatch: a=2\n" +
		"sim-profile.dispatch: b=1\n"
	if a != want {
		t.Errorf("Describe = %q, want %q", a, want)
	}
}

func TestProfileDoesNotPerturbExecution(t *testing.T) {
	run := func(profiled bool) []Time {
		e := NewEngine()
		if profiled {
			e.EnableProfile(NewProfile())
		}
		var got []Time
		for i := 0; i < 50; i++ {
			d := Duration((i*37)%11) * Microsecond
			e.ScheduleNamed(d, "x", func() { got = append(got, e.Now()) })
		}
		e.RunUntilIdle()
		return got
	}
	plain, profiled := run(false), run(true)
	if len(plain) != len(profiled) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(profiled))
	}
	for i := range plain {
		if plain[i] != profiled[i] {
			t.Fatalf("event %d fired at %v profiled vs %v plain", i, profiled[i], plain[i])
		}
	}
}
