package sim

import "testing"

// TestStreamNameCollisionCorrelates pins the hazard the streamdraw
// lint exists for: deriving the same name from the same seed yields
// the identical bit sequence, so two sites sharing a name are not
// independent — they are perfectly correlated. The experiment
// harnesses used to share names this way (four harnesses all deriving
// "phase", two monitor deployers both deriving "mon%d"); the per-site
// prefixes now keep every family distinct.
func TestStreamNameCollisionCorrelates(t *testing.T) {
	rng := NewRNG(42)
	a, b := rng.Stream("phase"), rng.Stream("phase")
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, name) no longer replays identically — substream derivation broke")
		}
	}
	distinct := []string{"fig14.phase", "fig15.phase", "fig16.phase", "rescue.phase"}
	first := map[uint64]string{}
	for _, name := range distinct {
		v := NewRNG(42).Stream(name).Uint64()
		if prev, dup := first[v]; dup {
			t.Errorf("streams %q and %q draw the same first value — still correlated", prev, name)
		}
		first[v] = name
	}
}

// TestStreamRegistryEntriesUnique guards the registry itself: the
// streamdraw lint checks derivations against the registry, but a
// duplicated entry would silently collapse in its set representation.
func TestStreamRegistryEntriesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range StreamNames {
		if seen[name] {
			t.Errorf("StreamNames lists %q twice", name)
		}
		seen[name] = true
	}
}
