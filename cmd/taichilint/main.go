// Command taichilint runs the determinism-lint suite over go package
// patterns and reports every violation of the simulator's bit-for-bit
// replay contract. It is the mechanical gate behind `make lint`:
//
//	go run ./cmd/taichilint ./...
//	go run ./cmd/taichilint ./internal/...
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 when the packages could not be loaded. Diagnostics
// print in `go vet` style (file:line:col: message) suffixed with the
// analyzer name, sorted by position, so output is itself deterministic.
//
// See internal/lint for the rules — five per-package (walltime,
// globalrand, maporder, goroutine, seedflow) and four whole-program
// built on the interprocedural facts layer (lockorder, streamdraw,
// traceschema, atomicmix) — and ARCHITECTURE.md §7 for the contract
// they enforce. The whole-program rules see exactly the packages the
// pattern loads, so schema cross-checks (traceschema) only fire on
// patterns that include internal/trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the analyzers and their rationale, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: taichilint [-rules] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the determinism-lint suite (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *listRules {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "taichilint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taichilint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(rel(cwd, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "taichilint: %d determinism violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// rel shortens absolute file paths to repo-relative ones so output is
// stable across checkouts (and across fleet CI runners).
func rel(cwd string, d lint.Diagnostic) string {
	s := d.String()
	return strings.TrimPrefix(s, cwd+string(os.PathSeparator))
}
