// Command taichi-trace runs a control-plane mix on the chosen system and
// analyzes its execution trace: the non-preemptible routine census
// (Figure 5), IPI delivery latency, VM-exit reasons, and (optionally)
// a raw event timeline window — the tooling counterpart of the paper's
// §3.2 production analysis.
//
// With -export it additionally derives lifecycle spans from the event
// stream (internal/obs) and writes a Chrome trace-event JSON file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// The export is byte-identical across repeated runs and across
// -parallel worker counts: nodes are simulated independently and
// serialized in member-index order.
//
// Usage:
//
//	taichi-trace -mode static -dur 5s
//	taichi-trace -mode taichi -timeline 10ms
//	taichi-trace -mode taichi -dur 2s -export trace.json
//	taichi-trace -mode taichi -workload vmstartup -retry -faults -export trace.json
//	taichi-trace -mode taichi -nodes 4 -parallel 8 -export fleet.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "static", "static | taichi")
	workload := flag.String("workload", "cp", "cp (monitor+churn mix) | vmstartup (cluster request lifecycle)")
	durFlag := flag.Duration("dur", 5*time.Second, "simulated duration")
	timeline := flag.Duration("timeline", 0, "print the raw event timeline for the first N of simulated time")
	seed := flag.Int64("seed", 7, "experiment seed")
	export := flag.String("export", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	nodes := flag.Int("nodes", 1, "number of independently-seeded nodes to trace")
	parallel := flag.Int("parallel", 1, "worker pool size for multi-node runs (output is identical for any value)")
	retry := flag.Bool("retry", false, "enable the vmstartup retry/dead-letter policy")
	withFaults := flag.Bool("faults", false, "attach the default fault-injection spec (taichi mode only)")
	withRecover := flag.Bool("recover", false, "arm the self-healing recovery ladder (taichi mode only); recovery rungs appear as defense_recover/node_rejoin trace events")
	flag.Parse()

	if *mode != "static" && *mode != "taichi" {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *workload != "cp" && *workload != "vmstartup" {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *withFaults && *mode != "taichi" {
		fmt.Fprintln(os.Stderr, "-faults requires -mode taichi")
		os.Exit(2)
	}
	if *withRecover && *mode != "taichi" {
		fmt.Fprintln(os.Stderr, "-recover requires -mode taichi")
		os.Exit(2)
	}
	if *nodes < 1 {
		fmt.Fprintln(os.Stderr, "-nodes must be >= 1")
		os.Exit(2)
	}

	horizon := sim.Duration(durFlag.Nanoseconds())
	traces := make([]obs.NodeTrace, *nodes)
	fleet.ForEach(*nodes, *parallel, func(i int) {
		node := runNode(*mode, *workload, fleet.MemberSeed(*seed, i), horizon, *retry, *withFaults, *withRecover)
		traces[i] = obs.NodeTrace{
			Label:  fmt.Sprintf("%s-node%d", *mode, i),
			Events: append([]trace.Event{}, node.Tracer.Events()...),
		}
		if i == 0 {
			analyze(node, *timeline)
		}
	})

	// Per-node derived-span summary — the textual counterpart of the
	// Chrome export, printed in member-index order.
	for i, nt := range traces {
		d := obs.Derive(nt.Events)
		fmt.Printf("node%d: %d events, %d spans, %d instants\n", i, len(nt.Events), len(d.Spans), len(d.Instants))
		for _, s := range obs.Summarize(d) {
			fmt.Printf("  span %-8s n=%-6d truncated=%-4d total=%v\n", s.Class, s.Count, s.Truncated, s.Total)
		}
	}

	if *export != "" {
		data := obs.ChromeJSON(traces)
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d bytes to %s\n", len(data), *export)
	}
}

// runNode builds one node, applies the workload, and runs it to the
// horizon. Everything inside is a pure function of (mode, workload,
// seed, horizon, flags) — the multi-node export depends on it.
func runNode(mode, workload string, seed int64, horizon sim.Duration, retry, withFaults, withRecover bool) *platform.Node {
	var node *platform.Node
	var spawn func(string, kernel.Program) *kernel.Thread
	var host cluster.Host
	switch mode {
	case "static":
		b := baseline.NewStaticDefault(seed)
		node, spawn, host = b.Node, b.SpawnCP, b
	case "taichi":
		tc := core.NewDefault(seed)
		if withFaults {
			inj := faults.NewInjector(faults.DefaultSpec())
			inj.Attach(tc)
		}
		if withRecover {
			tc.Sched.EnableRecovery(core.DefaultRecoveryPolicy())
		}
		node, spawn, host = tc.Node, tc.SpawnCP, tc
	}

	switch workload {
	case "cp":
		// A production-like CP mix (monitors + synth churn), the §3.2 setup.
		for i := 0; i < 12; i++ {
			spawn(fmt.Sprintf("monitor%d", i),
				controlplane.Monitor(controlplane.DefaultMonitor(), node.Stream(fmt.Sprintf("churn.mon%d", i))))
		}
		cfg := controlplane.DefaultSynthCP()
		r := node.Stream("churn")
		var churn func(i int)
		churn = func(i int) {
			spawn(fmt.Sprintf("churn%d", i), controlplane.SynthCP(cfg, r))
			node.Engine.Schedule(sim.Exponential(r, 40*sim.Millisecond), func() { churn(i + 1) })
		}
		churn(0)
	case "vmstartup":
		cfg := cluster.DefaultConfig(4)
		if retry {
			cfg.Retry = cluster.DefaultRetryPolicy()
		}
		mgr := cluster.NewManager(host, cfg)
		mgr.Start()
	}

	node.Run(node.Now().Add(horizon))
	return node
}

// analyze prints the single-node trace analyses (census, IPI latency,
// exit reasons, optional timeline) for the first node.
func analyze(node *platform.Node, timeline time.Duration) {
	// Census (Figure 5 analysis).
	census := node.Tracer.NonPreemptibleCensus()
	fmt.Printf("non-preemptible routines: %d total, max %v\n", census.Count(), census.Max())
	for _, b := range trace.CensusBuckets(census) {
		fmt.Printf("  %8v - %8v : %d\n", b.Lo, b.Hi, b.Count)
	}

	// IPI latency.
	if ipi := node.Tracer.IPILatencies(); ipi.Count() > 0 {
		fmt.Printf("ipi delivery: n=%d mean=%v p99=%v\n", ipi.Count(), ipi.Mean(), ipi.Quantile(0.99))
	}

	// VM-exit reasons (Tai Chi only).
	if reasons := node.Tracer.ExitReasonCounts(); len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for k := range reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("vm-exit reasons:")
		for _, k := range keys {
			fmt.Printf("  %-8s %d\n", k, reasons[k])
		}
	}

	if timeline > 0 {
		fmt.Println("timeline:")
		fmt.Print(node.Tracer.Timeline(0, sim.Time(timeline.Nanoseconds())))
	}
}
