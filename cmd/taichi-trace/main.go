// Command taichi-trace runs a control-plane mix on the chosen system and
// analyzes its execution trace: the non-preemptible routine census
// (Figure 5), IPI delivery latency, VM-exit reasons, and (optionally)
// a raw event timeline window — the tooling counterpart of the paper's
// §3.2 production analysis.
//
// Usage:
//
//	taichi-trace -mode static -dur 5s
//	taichi-trace -mode taichi -timeline 10ms
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "static", "static | taichi")
	durFlag := flag.Duration("dur", 5*time.Second, "simulated duration")
	timeline := flag.Duration("timeline", 0, "print the raw event timeline for the first N of simulated time")
	seed := flag.Int64("seed", 7, "experiment seed")
	flag.Parse()

	var node *platform.Node
	var spawn func(string, kernel.Program) *kernel.Thread
	switch *mode {
	case "static":
		b := baseline.NewStaticDefault(*seed)
		node, spawn = b.Node, b.SpawnCP
	case "taichi":
		tc := core.NewDefault(*seed)
		node, spawn = tc.Node, tc.SpawnCP
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// A production-like CP mix (monitors + synth churn), the §3.2 setup.
	for i := 0; i < 12; i++ {
		spawn(fmt.Sprintf("monitor%d", i),
			controlplane.Monitor(controlplane.DefaultMonitor(), node.Stream(fmt.Sprintf("mon%d", i))))
	}
	cfg := controlplane.DefaultSynthCP()
	r := node.Stream("churn")
	var churn func(i int)
	churn = func(i int) {
		spawn(fmt.Sprintf("churn%d", i), controlplane.SynthCP(cfg, r))
		node.Engine.Schedule(sim.Exponential(r, 40*sim.Millisecond), func() { churn(i + 1) })
	}
	churn(0)

	horizon := sim.Duration(durFlag.Nanoseconds())
	node.Run(node.Now().Add(horizon))

	// Census (Figure 5 analysis).
	census := node.Tracer.NonPreemptibleCensus()
	fmt.Printf("non-preemptible routines: %d total, max %v\n", census.Count(), census.Max())
	for _, b := range trace.CensusBuckets(census) {
		fmt.Printf("  %8v - %8v : %d\n", b.Lo, b.Hi, b.Count)
	}

	// IPI latency.
	if ipi := node.Tracer.IPILatencies(); ipi.Count() > 0 {
		fmt.Printf("ipi delivery: n=%d mean=%v p99=%v\n", ipi.Count(), ipi.Mean(), ipi.Quantile(0.99))
	}

	// VM-exit reasons (Tai Chi only).
	if reasons := node.Tracer.ExitReasonCounts(); len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for k := range reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("vm-exit reasons:")
		for _, k := range keys {
			fmt.Printf("  %-8s %d\n", k, reasons[k])
		}
	}

	if *timeline > 0 {
		fmt.Println("timeline:")
		fmt.Print(node.Tracer.Timeline(0, sim.Time(timeline.Nanoseconds())))
	}
}
