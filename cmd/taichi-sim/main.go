// Command taichi-sim runs one co-scheduling scenario and prints the
// resulting data-plane and control-plane statistics — a workbench for
// exploring the framework outside the fixed paper experiments.
//
// Usage:
//
//	taichi-sim -mode taichi -cp 16 -util 0.3 -dur 5s
//	taichi-sim -mode static -workload crr -dur 2s
//	taichi-sim -mode naive -workload ping
//
// Modes: taichi, static, type1, type2, naive.
// Workloads: none, ping, crr, stream, rr, fio, mysql, nginx.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

type host interface {
	SpawnCP(name string, prog kernel.Program) *kernel.Thread
}

func main() {
	mode := flag.String("mode", "taichi", "taichi | static | type1 | type2 | naive")
	wl := flag.String("workload", "crr", "none | ping | crr | stream | rr | fio | mysql | nginx")
	cp := flag.Int("cp", 16, "concurrent synth_cp tasks (50ms each, continuous churn)")
	util := flag.Float64("util", 0.30, "background DP utilization target")
	durFlag := flag.Duration("dur", 2*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	var node *platform.Node
	var h host
	var tc *core.TaiChi
	switch *mode {
	case "taichi":
		tc = core.NewDefault(*seed)
		node, h = tc.Node, tc
	case "static":
		b := baseline.NewStaticDefault(*seed)
		node, h = b.Node, b
	case "type1":
		tc = baseline.NewType1(*seed)
		node, h = tc.Node, tc
	case "type2":
		b := baseline.NewType2(*seed)
		node, h = b.Node, b
	case "naive":
		tc = baseline.NewNaive(*seed)
		node, h = tc.Node, tc
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	horizon := sim.Duration(durFlag.Nanoseconds())

	// Background DP load.
	if *util > 0 {
		bg := workload.NewBackground(node, workload.DefaultBackground(*util))
		bg.Start()
	}

	// CP churn: keep ~cp synth tasks alive.
	var tasks []*kernel.Thread
	if *cp > 0 {
		cfg := controlplane.DefaultSynthCP()
		r := node.Stream("sim.cp")
		var churn func(i int)
		churn = func(i int) {
			tasks = append(tasks, h.SpawnCP(fmt.Sprintf("synth%d", i), controlplane.SynthCP(cfg, r)))
			node.Engine.Schedule(sim.Exponential(r, sim.Duration(float64(50*sim.Millisecond)/float64(*cp))), func() { churn(i + 1) })
		}
		churn(0)
	}

	// Foreground benchmark.
	var report func()
	switch *wl {
	case "none":
		report = func() {}
	case "ping":
		cfg := workload.DefaultPing()
		cfg.Count = int(horizon / cfg.Interval)
		p := workload.NewPing(node, cfg)
		p.Start(nil)
		report = func() { fmt.Println(p.RTT.Summarize()) }
	case "crr":
		c := workload.NewCRR(node, workload.DefaultCRR())
		c.Start()
		report = func() {
			fmt.Printf("crr: %.0f conn/s, %.0f pkt/s, lat %v p99 %v\n",
				c.CPS(node.Now()), c.PPS(node.Now()),
				c.TxnLatency.Mean(), c.TxnLatency.Quantile(0.99))
		}
	case "stream":
		s := workload.NewStream(node, workload.DefaultStream())
		s.Start()
		report = func() {
			fmt.Printf("stream: %.0f pkt/s, lat %v p99 %v\n",
				s.PPS(node.Now()), s.Latency.Mean(), s.Latency.Quantile(0.99))
		}
	case "rr":
		r := workload.NewRR(node, workload.DefaultRR())
		r.Start()
		report = func() {
			fmt.Printf("rr: %.0f pkt/s, lat %v p99 %v\n",
				r.PPS(node.Now()), r.Latency.Mean(), r.Latency.Quantile(0.99))
		}
	case "fio":
		f := workload.NewFio(node, workload.DefaultFio())
		f.Start()
		report = func() {
			fmt.Printf("fio: %.0f IOPS, %.1f MB/s, lat %v p99 %v\n",
				f.IOPS(node.Now()), f.BandwidthMBps(node.Now()),
				f.Latency.Mean(), f.Latency.Quantile(0.99))
		}
	case "mysql":
		m := workload.NewMySQL(node, workload.DefaultMySQL())
		m.Start()
		report = func() {
			fmt.Printf("mysql: %.0f q/s avg, %.0f q/s max, %.0f tx/s\n",
				m.AvgQPS(node.Now()), m.MaxQPS(), m.AvgTPS(node.Now()))
		}
	case "nginx":
		n := workload.NewNginx(node, workload.DefaultNginx(false, true))
		n.Start()
		report = func() { fmt.Printf("nginx: %.0f req/s\n", n.RPS(node.Now())) }
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	start := time.Now()
	node.Run(node.Now().Add(horizon))
	wall := time.Since(start)

	fmt.Printf("mode=%s workload=%s simulated=%v wall=%.2fs events=%d\n",
		*mode, *wl, horizon, wall.Seconds(), node.Engine.Fired())
	report()

	// CP summary.
	if len(tasks) > 0 {
		h := metrics.NewHistogram("cp.turnaround")
		done := 0
		for _, t := range tasks {
			if t.State() == kernel.StateDone {
				done++
				h.Record(t.Turnaround())
			}
		}
		fmt.Printf("cp: %d/%d synth tasks done, turnaround mean %v p99 %v\n",
			done, len(tasks), h.Mean(), h.Quantile(0.99))
	}

	// DP utilization + Tai Chi internals.
	fmt.Printf("dp: net util %.1f%%", 100*node.Net.MeanUtilization())
	if node.Stor != nil {
		fmt.Printf(", stor util %.1f%%", 100*node.Stor.MeanUtilization())
	}
	fmt.Println()
	if tc != nil && tc.Sched != nil {
		fmt.Printf("taichi: yields=%d preempts=%d rotations=%d rescues=%d preempt_lat p99=%v\n",
			tc.Sched.Yields.Value(), tc.Sched.Preempts.Value(),
			tc.Sched.Rotations.Value(), tc.Sched.Rescues.Value(),
			tc.Sched.PreemptLatency.Quantile(0.99))
	}
}
