// Command taichi-sim runs one co-scheduling scenario and prints the
// resulting data-plane and control-plane statistics — a workbench for
// exploring the framework outside the fixed paper experiments.
//
// Usage:
//
//	taichi-sim -mode taichi -cp 16 -util 0.3 -dur 5s
//	taichi-sim -mode static -workload crr -dur 2s
//	taichi-sim -mode naive -workload ping
//	taichi-sim -nodes 16 -parallel 8      # fleet of independent nodes
//	taichi-sim -faults default            # chaos run, DefaultSpec faults
//	taichi-sim -faults probe-miss=0.3,ipi-drop=0.1,offline-mtbf=20ms
//	taichi-sim -workload vmstartup -retry -cp 4 -faults default
//	taichi-sim -faults default -recover           # self-healing ladder armed
//	taichi-sim -faults default -recover -audit    # + invariant audit after the run
//	taichi-sim -workload vmstartup -retry -cp 4 -nodes 8 -failover \
//	           -faults exit-stall=0.2,cp-crash=0.05,nack=0.2,coord-timeout=0.1
//	taichi-sim -nodes 8 -place pressure           # signal-driven cluster placer
//	taichi-sim -nodes 8 -place rr -rebalance=false
//
// Modes: taichi, static, type1, type2, naive.
// Workloads: none, ping, crr, stream, rr, fio, mysql, nginx, vmstartup.
//
// With -nodes N > 1, N independently-seeded copies of the scenario run
// on a bounded worker pool (internal/fleet) and the merged fleet-wide
// statistics are printed. Same seed + any -parallel value gives the same
// output.
//
// The vmstartup workload drives the cluster VM-creation pipeline;
// -retry arms per-request deadlines, exponential-backoff retries and
// dead-lettering, and -failover (fleet mode) re-dispatches requests
// stranded on unhealthy nodes — static-fallback defense mode or an open
// CP→DP breaker — to the healthy members.
//
// -recover arms the self-healing layer: the scheduler's de-escalation
// ladder (static → sw-probe → normal under the default
// core.RecoveryPolicy) and, with -retry -workload vmstartup, the bounded
// dead-letter requeue (cluster.DefaultRequeuePolicy, health-gated on the
// node's defense mode and breaker). In fleet failover mode a member that
// degraded and climbed back is reported as rejoined rather than failed.
//
// -overload arms the overload-control layer: the scheduler's brownout
// ladder (normal → throttle → shed → brownout under the default
// core.OverloadPolicy) and, with -workload vmstartup, the deterministic
// admission gate with priority-aware load shedding
// (cluster.DefaultAdmissionPolicy + DefaultClassify). In fleet failover
// mode a member that ends its run browned-out is excluded from the
// re-dispatch ring even when healthy.
//
// -place <policy> switches the fleet under the cluster placer
// (internal/placement): instead of each node running its own arrival
// process, VM startups arrive at cluster level and the chosen policy
// (rr, spread, binpack, pressure) routes each one to a member using the
// overload ladder's live signals; -rebalance (on by default) also runs
// the hotspot scan + budgeted live-migration loop. Requires -nodes > 1;
// -util sets every member's background, -overload arms the admission
// gates, -audit replays the placer trace too.
//
// -audit replays every node's trace through the runtime invariant
// auditor (internal/audit) after the run and exits non-zero on any
// violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

type host interface {
	SpawnCP(name string, prog kernel.Program) *kernel.Thread
}

// scenario is one fully-wired node plus its reporting hooks.
type scenario struct {
	node  *platform.Node
	tc    *core.TaiChi
	inj   *faults.Injector // nil unless -faults armed
	tasks []*kernel.Thread
	mgr   *cluster.Manager // nil unless -workload vmstartup
	// report prints the workload's human-readable result (single-node mode).
	report func()
	// collect folds the workload's metrics into fleet aggregates.
	collect func(agg *fleet.Aggregates)
}

// newHost assembles the node flavour for one seed.
func newHost(mode string, seed int64) (node *platform.Node, tc *core.TaiChi, h host, err error) {
	switch mode {
	case "taichi":
		tc = core.NewDefault(seed)
		node, h = tc.Node, tc
	case "static":
		b := baseline.NewStaticDefault(seed)
		node, h = b.Node, b
	case "type1":
		tc = baseline.NewType1(seed)
		node, h = tc.Node, tc
	case "type2":
		b := baseline.NewType2(seed)
		node, h = b.Node, b
	case "naive":
		tc = baseline.NewNaive(seed)
		node, h = tc.Node, tc
	default:
		err = fmt.Errorf("unknown mode %q", mode)
	}
	return node, tc, h, err
}

// build assembles the scenario for one seed; it is run once in
// single-node mode and once per member in fleet mode.
func build(mode, wl string, cp int, util float64, spec faults.Spec, retry, recov, ovl bool, seed int64, horizon sim.Duration) (*scenario, error) {
	sc := &scenario{}
	var h host
	var err error
	sc.node, sc.tc, h, err = newHost(mode, seed)
	if err != nil {
		return nil, err
	}
	node := sc.node

	// Fault injection rides the Tai Chi scheduler's defense hooks, so it
	// needs a mode built around core.TaiChi.
	wrapCP := func(p kernel.Program) kernel.Program { return p }
	if !spec.Zero() {
		if sc.tc == nil {
			return nil, fmt.Errorf("-faults requires a Tai Chi scheduler mode (taichi, type1, naive), not %q", mode)
		}
		sc.inj = faults.NewInjector(spec)
		sc.inj.Attach(sc.tc)
		wrapCP = sc.inj.WrapCP
	}
	if recov {
		if sc.tc == nil {
			return nil, fmt.Errorf("-recover requires a Tai Chi scheduler mode (taichi, type1, naive), not %q", mode)
		}
		sc.tc.Sched.EnableRecovery(core.DefaultRecoveryPolicy())
	}
	if ovl {
		if sc.tc == nil {
			return nil, fmt.Errorf("-overload requires a Tai Chi scheduler mode (taichi, type1, naive), not %q", mode)
		}
		sc.tc.Sched.EnableOverload(core.DefaultOverloadPolicy())
	}

	// Background DP load.
	if util > 0 {
		bg := workload.NewBackground(node, workload.DefaultBackground(util))
		bg.Start()
	}

	// CP churn: keep ~cp synth tasks alive.
	if cp > 0 {
		cfg := controlplane.DefaultSynthCP()
		r := node.Stream("sim.cp")
		var churn func(i int)
		churn = func(i int) {
			sc.tasks = append(sc.tasks, h.SpawnCP(fmt.Sprintf("synth%d", i), wrapCP(controlplane.SynthCP(cfg, r))))
			node.Engine.Schedule(sim.Exponential(r, sim.Duration(float64(50*sim.Millisecond)/float64(cp))), func() { churn(i + 1) })
		}
		churn(0)
	}

	// Foreground benchmark.
	switch wl {
	case "none":
		sc.report = func() {}
		sc.collect = func(*fleet.Aggregates) {}
	case "ping":
		cfg := workload.DefaultPing()
		cfg.Count = int(horizon / cfg.Interval)
		p := workload.NewPing(node, cfg)
		p.Start(nil)
		sc.report = func() { fmt.Println(p.RTT.Summarize()) }
		sc.collect = func(a *fleet.Aggregates) { a.Merge("ping.rtt", p.RTT) }
	case "crr":
		c := workload.NewCRR(node, workload.DefaultCRR())
		c.Start()
		sc.report = func() {
			fmt.Printf("crr: %.0f conn/s, %.0f pkt/s, lat %v p99 %v\n",
				c.CPS(node.Now()), c.PPS(node.Now()),
				c.TxnLatency.Mean(), c.TxnLatency.Quantile(0.99))
		}
		sc.collect = func(a *fleet.Aggregates) {
			a.Merge("crr.txn_latency", c.TxnLatency)
			a.Add("crr.cps", c.CPS(node.Now()))
			a.Add("crr.pps", c.PPS(node.Now()))
		}
	case "stream":
		s := workload.NewStream(node, workload.DefaultStream())
		s.Start()
		sc.report = func() {
			fmt.Printf("stream: %.0f pkt/s, lat %v p99 %v\n",
				s.PPS(node.Now()), s.Latency.Mean(), s.Latency.Quantile(0.99))
		}
		sc.collect = func(a *fleet.Aggregates) {
			a.Merge("stream.latency", s.Latency)
			a.Add("stream.pps", s.PPS(node.Now()))
		}
	case "rr":
		r := workload.NewRR(node, workload.DefaultRR())
		r.Start()
		sc.report = func() {
			fmt.Printf("rr: %.0f pkt/s, lat %v p99 %v\n",
				r.PPS(node.Now()), r.Latency.Mean(), r.Latency.Quantile(0.99))
		}
		sc.collect = func(a *fleet.Aggregates) {
			a.Merge("rr.latency", r.Latency)
			a.Add("rr.pps", r.PPS(node.Now()))
		}
	case "fio":
		f := workload.NewFio(node, workload.DefaultFio())
		f.Start()
		sc.report = func() {
			fmt.Printf("fio: %.0f IOPS, %.1f MB/s, lat %v p99 %v\n",
				f.IOPS(node.Now()), f.BandwidthMBps(node.Now()),
				f.Latency.Mean(), f.Latency.Quantile(0.99))
		}
		sc.collect = func(a *fleet.Aggregates) {
			a.Merge("fio.latency", f.Latency)
			a.Add("fio.iops", f.IOPS(node.Now()))
			a.Add("fio.bw_mbps", f.BandwidthMBps(node.Now()))
		}
	case "mysql":
		m := workload.NewMySQL(node, workload.DefaultMySQL())
		m.Start()
		sc.report = func() {
			fmt.Printf("mysql: %.0f q/s avg, %.0f q/s max, %.0f tx/s\n",
				m.AvgQPS(node.Now()), m.MaxQPS(), m.AvgTPS(node.Now()))
		}
		sc.collect = func(a *fleet.Aggregates) {
			a.Add("mysql.avg_qps", m.AvgQPS(node.Now()))
			a.Add("mysql.avg_tps", m.AvgTPS(node.Now()))
		}
	case "nginx":
		n := workload.NewNginx(node, workload.DefaultNginx(false, true))
		n.Start()
		sc.report = func() { fmt.Printf("nginx: %.0f req/s\n", n.RPS(node.Now())) }
		sc.collect = func(a *fleet.Aggregates) { a.Add("nginx.rps", n.RPS(node.Now())) }
	case "vmstartup":
		ch, ok := h.(cluster.Host)
		if !ok {
			return nil, fmt.Errorf("mode %q cannot host the vmstartup workload", mode)
		}
		ccfg := cluster.DefaultConfig(1)
		ccfg.VMLifetime = 0
		if retry {
			ccfg.Retry = cluster.DefaultRetryPolicy()
		}
		if retry && recov {
			// The dead-letter requeue only makes sense with the retry
			// pipeline; gate resurrections on the node's live health so a
			// statically-degraded or breaker-open node does not re-ingest
			// its own dead letters.
			ccfg.Requeue = cluster.DefaultRequeuePolicy()
			ccfg.Healthy = func() bool { return healthyNode(sc) }
		}
		if ovl {
			// The overload layer: the admission gate + priority shedder on
			// the manager, fed by the node's live brownout-ladder rung.
			ccfg.Admission = cluster.DefaultAdmissionPolicy()
			ccfg.Classify = cluster.DefaultClassify
			ccfg.OverloadLevel = func() int { return int(sc.tc.Sched.OverloadState()) }
		}
		if sc.inj != nil {
			ccfg.WrapCP = sc.inj.WrapCP
		}
		m := cluster.NewManager(ch, ccfg)
		m.Start()
		sc.mgr = m
		sc.report = func() {
			fmt.Printf("vmstartup: %s\n", m.Outcomes.String())
			fmt.Printf("vmstartup: startup mean %v p99 %v (SLO %v)\n",
				m.StartupTime.Mean(), m.StartupTime.Quantile(0.99), ccfg.StartupSLO)
			if ovl {
				sh := m.ShedByClass()
				fmt.Printf("vmstartup: shed batch=%d normal=%d latency-critical=%d queued=%d\n",
					sh[cluster.PriorityBatch], sh[cluster.PriorityNormal],
					sh[cluster.PriorityLatencyCritical], m.QueuedAdmission())
			}
		}
		sc.collect = func(a *fleet.Aggregates) {
			collectVMs(a, m)
			if ovl {
				sh := m.ShedByClass()
				a.Add("vm.shed", float64(m.Shed()))
				a.Add("vm.shed_batch", float64(sh[cluster.PriorityBatch]))
				a.Add("vm.shed_normal", float64(sh[cluster.PriorityNormal]))
				a.Add("vm.shed_lc", float64(sh[cluster.PriorityLatencyCritical]))
			}
		}
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
	return sc, nil
}

// collectVMs folds the VM-startup request outcomes into fleet
// aggregates (also the per-member collector of failover mode).
func collectVMs(a *fleet.Aggregates, m *cluster.Manager) {
	a.Merge("vm.startup", m.StartupTime)
	a.Add("vm.issued", float64(m.Issued))
	a.Add("vm.completed", float64(m.Completed))
	a.Add("vm.retried", float64(m.Retried()))
	a.Add("vm.dead_lettered", float64(m.DeadLettered()))
}

// stranded counts the member's non-terminal requests at the horizon —
// the queued work a failed node hands to its healthy peers.
func stranded(m *cluster.Manager) int {
	n := 0
	for _, r := range m.Requests() {
		if !r.Terminal() {
			n++
		}
	}
	return n
}

// healthyNode reports whether the node ended its run able to absorb
// re-dispatched requests: defense ladder above static fallback and the
// CP→DP breaker not stuck open. Nodes without Tai Chi internals (the
// static baseline) have neither signal and count as healthy.
func healthyNode(sc *scenario) bool {
	if sc.tc == nil {
		return true
	}
	if sc.tc.Sched.DefenseMode() == core.ModeStatic {
		return false
	}
	if sc.tc.Breaker != nil && sc.tc.Breaker.State() == controlplane.BreakerOpen {
		return false
	}
	return true
}

// rejoinedNode reports a member that degraded mid-run and climbed all
// the way back to health by the horizon — fleet.RunFailover keeps such
// nodes in the dispatch ring and tallies them as failover.nodes_rejoined.
func rejoinedNode(sc *scenario) bool {
	if sc.tc == nil {
		return false
	}
	return sc.tc.Sched.RecoveryStats().Rejoined && healthyNode(sc)
}

// brownedOutNode reports a member that ended its run on the brownout
// rung — fleet.RunFailover excludes it from the re-dispatch ring even
// when its defenses held (re-dispatching onto a node that is shedding
// its own load would defeat the brownout).
func brownedOutNode(sc *scenario) bool {
	if sc.tc == nil {
		return false
	}
	return sc.tc.Sched.OverloadState() == core.OverloadBrownout
}

// auditNode replays the node's trace through the runtime invariant
// auditor, including the breaker counter snapshot when one is installed.
func auditNode(sc *scenario) *audit.Report {
	var bc *controlplane.BreakerCounters
	if sc.tc != nil && sc.tc.Breaker != nil {
		c := sc.tc.Breaker.Counters()
		bc = &c
	}
	return audit.Run(sc.node.Tracer.Events(), audit.Options{
		Breaker:       bc,
		DroppedEvents: sc.node.Tracer.Dropped(),
	})
}

// redispatchVMs replays count stranded VM creations on a fresh,
// fault-free node of the same mode — the healthy peer absorbing a
// failed node's queue. The re-run startup latency merges into the same
// vm.startup histogram, so failover traffic counts against the SLO
// exactly like first-try traffic.
func redispatchVMs(mode string, retry bool, seed int64, count int, a *fleet.Aggregates) {
	node, _, h, err := newHost(mode, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ch, ok := h.(cluster.Host)
	if !ok {
		fmt.Fprintf(os.Stderr, "mode %q cannot host re-dispatched vmstartup work\n", mode)
		os.Exit(2)
	}
	cfg := cluster.DefaultConfig(1)
	cfg.VMs = count
	cfg.VMLifetime = 0
	if retry {
		cfg.Retry = cluster.DefaultRetryPolicy()
	}
	m := cluster.NewManager(ch, cfg)
	m.Start()
	for step := 0; step < 120; step++ {
		node.Run(node.Now().Add(500 * sim.Millisecond))
		if int(m.Issued) >= count && m.Terminal() {
			break
		}
	}
	collectVMs(a, m)
}

// cpSummary folds the scenario's synth-task outcomes into a histogram.
func cpSummary(tasks []*kernel.Thread) (done int, h *metrics.Histogram) {
	h = metrics.NewHistogram("cp.turnaround")
	for _, t := range tasks {
		if t.State() == kernel.StateDone {
			done++
			h.Record(t.Turnaround())
		}
	}
	return done, h
}

func main() {
	mode := flag.String("mode", "taichi", "taichi | static | type1 | type2 | naive")
	wl := flag.String("workload", "crr", "none | ping | crr | stream | rr | fio | mysql | nginx | vmstartup")
	cp := flag.Int("cp", 16, "concurrent synth_cp tasks (50ms each, continuous churn)")
	util := flag.Float64("util", 0.30, "background DP utilization target")
	durFlag := flag.Duration("dur", 2*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "experiment seed")
	nodes := flag.Int("nodes", 1, "independently-seeded nodes running the scenario (fleet mode when > 1)")
	parallel := flag.Int("parallel", 0, "fleet worker-pool size (0 = GOMAXPROCS; output is identical for any value)")
	faultsFlag := flag.String("faults", "off", "fault-injection spec: off | default | key=value,... (see internal/faults.ParseSpec)")
	retry := flag.Bool("retry", false, "enable per-request deadlines, retries and dead-lettering for -workload vmstartup")
	recov := flag.Bool("recover", false, "arm the self-healing layer: scheduler de-escalation ladder, and (with -retry -workload vmstartup) the health-gated dead-letter requeue")
	overload := flag.Bool("overload", false, "arm the overload-control layer: the core brownout ladder, and (with -workload vmstartup) the priority-aware admission gate and shedder")
	auditFlag := flag.Bool("audit", false, "replay every node's trace through the runtime invariant auditor after the run; exit 1 on any violation")
	failover := flag.Bool("failover", false, "fleet mode: re-dispatch requests stranded on unhealthy nodes to healthy ones (-workload vmstartup, -nodes > 1)")
	place := flag.String("place", "", "cluster placement policy: rr | spread | binpack | pressure (placed fleet mode, -nodes > 1)")
	rebalance := flag.Bool("rebalance", true, "with -place: run the hotspot scan + budgeted live-migration loop")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot to this file (.prom = Prometheus text, anything else = JSON)")
	simprof := flag.Bool("simprof", false, "engine self-profiling: per-event-class dispatch counts, heap high-water mark, wall-clock attribution (single-node only)")
	flag.Parse()

	horizon := sim.Duration(durFlag.Nanoseconds())

	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *failover && (*wl != "vmstartup" || *nodes <= 1) {
		fmt.Fprintln(os.Stderr, "-failover needs -workload vmstartup and -nodes > 1")
		os.Exit(2)
	}
	if *place != "" {
		pol := placement.Policy(*place)
		if !pol.Valid() {
			fmt.Fprintf(os.Stderr, "unknown placement policy %q (rr | spread | binpack | pressure)\n", *place)
			os.Exit(2)
		}
		if *nodes <= 1 {
			fmt.Fprintln(os.Stderr, "-place needs -nodes > 1")
			os.Exit(2)
		}
		if *failover {
			fmt.Fprintln(os.Stderr, "-place and -failover are different fleet dispatchers; pick one")
			os.Exit(2)
		}
		runPlaced(pol, *rebalance, *overload, *auditFlag, *seed, *util, *nodes, *parallel)
		return
	}

	if *nodes > 1 {
		if *simprof {
			fmt.Fprintln(os.Stderr, "-simprof profiles one engine; use it with -nodes 1")
			os.Exit(2)
		}
		runFleet(*mode, *wl, *cp, *util, spec, *retry, *recov, *overload, *auditFlag, *failover, *seed, horizon, *nodes, *parallel, *metricsOut)
		return
	}

	sc, err := build(*mode, *wl, *cp, *util, spec, *retry, *recov, *overload, *seed, horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	node := sc.node

	var prof *sim.Profile
	if *simprof {
		prof = sim.NewProfile()
		// Wall-clock attribution is injected here, in cmd/ where wall
		// time is legal — the engine itself never reads a clock.
		prof.Clock = func() int64 { return time.Now().UnixNano() } //taichi:allow walltime — profiler attribution source, never enters simulated state
		node.Engine.EnableProfile(prof)
	}

	start := time.Now() //taichi:allow walltime — operator-facing wall-clock cost of the run; never enters simulated state
	node.Run(node.Now().Add(horizon))
	wall := time.Since(start) //taichi:allow walltime — paired with the start stamp above, reported alongside simulated time

	fmt.Printf("mode=%s workload=%s simulated=%v wall=%.2fs events=%d\n",
		*mode, *wl, horizon, wall.Seconds(), node.Engine.Fired())
	sc.report()

	// CP summary.
	if len(sc.tasks) > 0 {
		done, h := cpSummary(sc.tasks)
		fmt.Printf("cp: %d/%d synth tasks done, turnaround mean %v p99 %v\n",
			done, len(sc.tasks), h.Mean(), h.Quantile(0.99))
	}

	// DP utilization + Tai Chi internals.
	fmt.Printf("dp: net util %.1f%%", 100*node.Net.MeanUtilization())
	if node.Stor != nil {
		fmt.Printf(", stor util %.1f%%", 100*node.Stor.MeanUtilization())
	}
	fmt.Println()
	if sc.tc != nil && sc.tc.Sched != nil {
		fmt.Printf("taichi: yields=%d preempts=%d rotations=%d rescues=%d preempt_lat p99=%v\n",
			sc.tc.Sched.Yields.Value(), sc.tc.Sched.Preempts.Value(),
			sc.tc.Sched.Rotations.Value(), sc.tc.Sched.Rescues.Value(),
			sc.tc.Sched.PreemptLatency.Quantile(0.99))
	}
	if sc.inj != nil {
		s := sc.tc.Sched
		fmt.Println(sc.inj.Counts.String())
		fmt.Printf("defense: mode=%s detected=%d recovered=%d retries=%d teardowns=%d probe-fallbacks=%d static-fallbacks=%d\n",
			s.DefenseMode(), s.FaultsDetected.Value(), s.FaultsRecovered.Value(),
			s.WatchdogRetries.Value(), s.WatchdogTeardowns.Value(),
			s.ProbeFallbacks.Value(), s.StaticFallbacks.Value())
		if sc.tc.Breaker != nil {
			fmt.Println(sc.tc.Breaker.Describe())
		}
	}
	if *recov && sc.tc != nil {
		rs := sc.tc.Sched.RecoveryStats()
		fmt.Printf("recovery: recoveries=%d reescalations=%d generation=%d rejoined=%v\n",
			sc.tc.Sched.DefenseRecoveries.Value(), sc.tc.Sched.Reescalations.Value(),
			rs.Generation, rs.Rejoined)
	}
	if *overload && sc.tc != nil {
		ovs := sc.tc.Sched.OverloadStats()
		fmt.Printf("overload: state=%s peak=%s pressure=%.3f enters=%d exits=%d\n",
			ovs.State, ovs.Peak, ovs.Pressure,
			sc.tc.Sched.OverloadEnters.Value(), sc.tc.Sched.OverloadExits.Value())
	}

	if prof != nil {
		// Deterministic half first (dispatch counts, heap depth), then the
		// wall-clock attribution, which varies run to run by design.
		fmt.Print(prof.Describe())
		for _, c := range prof.Dispatch() {
			if c.WallNs > 0 {
				fmt.Printf("sim-profile.wall: %s=%.3fms\n", c.Name, float64(c.WallNs)/1e6)
			}
		}
	}

	if *metricsOut != "" {
		writeMetrics(*metricsOut, snapshotScenario(sc))
	}
	if *auditFlag {
		rep := auditNode(sc)
		fmt.Print(rep.String())
		if !rep.Ok() {
			os.Exit(1)
		}
	}
}

// snapshotScenario assembles the single-node metrics snapshot: the
// node registry, the workload's collect output, and the scheduler /
// request-manager / fault-injector counters when present.
func snapshotScenario(sc *scenario) *obs.Snapshot {
	snap := obs.NewSnapshot()
	snap.AddRegistry("node", sc.node.Metrics)
	snap.AddCounter("engine_events", sc.node.Engine.Fired())
	agg := fleet.NewAggregates()
	sc.collect(agg)
	for _, name := range agg.HistogramNames() {
		snap.AddHistogram(name, agg.Histogram(name))
	}
	for _, name := range agg.ScalarNames() {
		snap.AddGauge(name, agg.Scalar(name))
	}
	if sc.tc != nil && sc.tc.Sched != nil {
		s := sc.tc.Sched
		snap.AddCounter("sched_yields", s.Yields.Value())
		snap.AddCounter("sched_preempts", s.Preempts.Value())
		snap.AddCounter("sched_rescues", s.Rescues.Value())
		snap.AddCounter("sched_rotations", s.Rotations.Value())
		snap.AddHistogram("sched_preempt_latency", s.PreemptLatency)
	}
	if sc.mgr != nil {
		snap.AddGroup("vm_outcomes", sc.mgr.Outcomes)
		snap.AddHistogram("vm_startup", sc.mgr.StartupTime)
		snap.AddHistogram("vm_cp_exec", sc.mgr.CPExecTime)
	}
	if sc.inj != nil {
		snap.AddGroup("faults_injected", sc.inj.Counts)
	}
	return snap
}

// snapshotFleet assembles the fleet-wide snapshot from merged
// aggregates: histograms as summaries, scalars as gauges.
func snapshotFleet(agg *fleet.Aggregates) *obs.Snapshot {
	snap := obs.NewSnapshot()
	snap.AddCounter("fleet_members", uint64(agg.Members))
	for _, name := range agg.HistogramNames() {
		snap.AddHistogram(name, agg.Histogram(name))
	}
	for _, name := range agg.ScalarNames() {
		snap.AddGauge(name, agg.Scalar(name))
	}
	return snap
}

// writeMetrics renders the snapshot by file extension: .prom gets the
// Prometheus text exposition, anything else JSON.
func writeMetrics(path string, snap *obs.Snapshot) {
	var data []byte
	if strings.HasSuffix(path, ".prom") {
		data = snap.Prometheus()
	} else {
		data = snap.JSON()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("metrics snapshot written to %s\n", path)
}

// runPlaced executes the placed fleet: n Tai Chi nodes under the cluster
// placer, VM startups arriving at cluster level and routed by the chosen
// policy, with the rebalance loop optionally live-migrating residents
// off hotspots. The run drains when every startup settles; output is
// seed-deterministic for any -parallel value.
func runPlaced(pol placement.Policy, rebalance, ovl, auditFlag bool, seed int64, util float64, n, workers int) {
	start := time.Now() //taichi:allow walltime — operator-facing wall-clock cost of the run; never enters simulated state
	members := make([]*placement.ClusterNode, n)
	ifaces := make([]placement.Member, n)
	for i := 0; i < n; i++ {
		tc := core.NewDefault(fleet.MemberSeed(seed, i))
		tc.Sched.EnableOverload(core.DefaultOverloadPolicy())
		if util > 0 {
			bg := workload.NewBackground(tc.Node, workload.DefaultBackground(util))
			bg.Start()
		}
		ccfg := cluster.DefaultConfig(1)
		ccfg.VMLifetime = 0
		ccfg.Retry = cluster.DefaultRetryPolicy()
		if ovl {
			ccfg.Admission = cluster.DefaultAdmissionPolicy()
			ccfg.Classify = cluster.DefaultClassify
			ccfg.OverloadLevel = func() int { return int(tc.Sched.OverloadState()) }
		}
		ccfg.Placement = cluster.DefaultPlacementPolicy()
		mgr := cluster.NewManager(tc, ccfg)
		mgr.Start()
		members[i] = placement.NewClusterNode(tc, mgr)
		ifaces[i] = members[i]
	}

	pcfg := placement.DefaultConfig()
	pcfg.Policy = pol
	pcfg.Rebalance = rebalance
	pcfg.Workers = workers
	eng := placement.NewEngine(seed, pcfg, ifaces)
	st := eng.Run()
	wall := time.Since(start) //taichi:allow walltime — paired with the start stamp above, reported alongside simulated time

	startup := metrics.NewHistogram("vm.startup")
	var completed, dead uint64
	for _, m := range members {
		startup.Merge(m.Mgr.StartupTime)
		completed += m.Mgr.Completed
		dead += m.Mgr.DeadLettered()
	}
	fmt.Printf("place=%s nodes=%d rebalance=%v vms=%d wall=%.2fs\n",
		pol, n, rebalance, pcfg.VMs, wall.Seconds())
	fmt.Printf("placement: placed=%d replaced=%d cluster-dead=%d bounce-dead=%d scans=%d\n",
		st.Placed, st.Replaced, st.AllExcluded, st.BounceDead, st.Scans)
	fmt.Printf("rebalance: migrations=%d/%d dwell=%d max-starts/scan=%d (budget %d) pause=%v\n",
		st.MigrationsDone, st.MigrationsStarted, st.HotScans,
		st.MaxStartsPerScan, pcfg.MigrationBudget, st.PauseTotal)
	fmt.Printf("vmstartup: completed=%d dead-lettered=%d startup mean %v p99 %v\n",
		completed, dead, startup.Mean(), startup.Quantile(0.99))
	if auditFlag {
		violations := 0
		rep := audit.Run(eng.Tracer().Events(), audit.Options{})
		violations += len(rep.Violations)
		if !rep.Ok() {
			fmt.Printf("placer %s", rep.String())
		}
		for i, m := range members {
			nrep := audit.Run(m.TC.Node.Tracer.Events(), audit.Options{})
			violations += len(nrep.Violations)
			if !nrep.Ok() {
				fmt.Printf("node%d %s", i, nrep.String())
			}
		}
		fmt.Printf("audit: nodes=%d violations=%d\n", n, violations)
		if violations > 0 {
			os.Exit(1)
		}
	}
}

// runFleet executes the scenario on n independently-seeded nodes via the
// bounded worker pool and prints the merged fleet-wide statistics. With
// -failover, members additionally report their health and stranded
// request count, and the stranded work of unhealthy nodes is re-run on
// the healthy ones (fleet.RunFailover) with its startup latency merged
// into the same SLO-facing histogram.
func runFleet(mode, wl string, cp int, util float64, spec faults.Spec, retry, recov, ovl, auditFlag, failover bool, seed int64, horizon sim.Duration, n, workers int, metricsOut string) {
	start := time.Now() //taichi:allow walltime — fleet throughput report (nodes/s); results themselves are seed-deterministic
	// Per-member audit reports, filled by index on the worker pool and
	// printed in member order afterwards.
	audits := make([]*audit.Report, n)
	member := func(idx int, memberSeed int64, a *fleet.Aggregates) *scenario {
		sc, err := build(mode, wl, cp, util, spec, retry, recov, ovl, memberSeed, horizon)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc.node.Run(sc.node.Now().Add(horizon))
		if auditFlag {
			audits[idx] = auditNode(sc)
		}
		sc.collect(a)
		if sc.inj != nil {
			a.Add("faults.injected", float64(sc.inj.Counts.Total()))
			a.Add("faults.detected", float64(sc.tc.Sched.FaultsDetected.Value()))
			a.Add("faults.recovered", float64(sc.tc.Sched.FaultsRecovered.Value()))
		}
		done, h := cpSummary(sc.tasks)
		a.Merge("cp.turnaround", h)
		a.Add("cp.tasks", float64(len(sc.tasks)))
		a.Add("cp.done", float64(done))
		a.Add("events", float64(sc.node.Engine.Fired()))
		a.Add("dp.net_util", sc.node.Net.MeanUtilization())
		if sc.node.Stor != nil {
			a.Add("dp.stor_util", sc.node.Stor.MeanUtilization())
		}
		return sc
	}

	var agg *fleet.Aggregates
	if failover {
		agg = fleet.RunFailover(n, seed, workers,
			func(idx int, memberSeed int64, a *fleet.Aggregates) fleet.NodeReport {
				sc := member(idx, memberSeed, a)
				return fleet.NodeReport{
					Healthy:    healthyNode(sc),
					Stranded:   stranded(sc.mgr),
					Rejoined:   rejoinedNode(sc),
					BrownedOut: brownedOutNode(sc),
				}
			},
			func(idx int, redisSeed int64, count int, a *fleet.Aggregates) {
				redispatchVMs(mode, retry, redisSeed, count, a)
			})
	} else {
		agg = fleet.RunWorkers(n, seed, workers, func(idx int, memberSeed int64, a *fleet.Aggregates) {
			member(idx, memberSeed, a)
		})
	}
	wall := time.Since(start) //taichi:allow walltime — wall-clock half of the speedup table, not simulation input
	fmt.Printf("mode=%s workload=%s nodes=%d simulated=%v wall=%.2fs events=%.0f\n",
		mode, wl, agg.Members, horizon, wall.Seconds(), agg.Scalar("events"))
	fmt.Print(agg.Describe())
	members := float64(agg.Members)
	fmt.Printf("per-node means: cp done %.1f/%.1f, net util %.1f%%, stor util %.1f%%\n",
		agg.Scalar("cp.done")/members, agg.Scalar("cp.tasks")/members,
		100*agg.Scalar("dp.net_util")/members, 100*agg.Scalar("dp.stor_util")/members)
	if metricsOut != "" {
		writeMetrics(metricsOut, snapshotFleet(agg))
	}
	if auditFlag {
		violations := 0
		for i, rep := range audits {
			violations += len(rep.Violations)
			if !rep.Ok() {
				fmt.Printf("node%d %s", i, rep.String())
			}
		}
		fmt.Printf("audit: nodes=%d violations=%d\n", n, violations)
		if violations > 0 {
			os.Exit(1)
		}
	}
}
