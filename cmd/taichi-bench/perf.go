package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/workload"
)

// perfScenario is one pinned perf-harness scenario: a fixed-seed,
// fixed-shape simulation the regression harness re-runs release after
// release. The run function returns the engine-event count, the
// simulated time covered, and a metrics snapshot for -metrics-dir.
// Scenarios always run with seed pinned to 1 so the simulation side
// (events, simulated time, snapshot) is identical on every host —
// only the wall-clock figures move.
type perfScenario struct {
	name string
	desc string
	run  func() (events uint64, simulated sim.Duration, snap *obs.Snapshot)
}

const perfSeed = 1

// perfScenarios are the pinned `make bench` scenarios, named after the
// experiments whose hot paths they exercise.
var perfScenarios = []perfScenario{
	{
		name: "fig2",
		desc: "static baseline, density-4 VM startup (motivation hot path)",
		run: func() (uint64, sim.Duration, *obs.Snapshot) {
			b := baseline.NewStaticDefault(perfSeed)
			cfg := cluster.DefaultConfig(4)
			cfg.VMLifetime = 0
			mgr := cluster.NewManager(b, cfg)
			mgr.Start()
			horizon := 2 * sim.Second
			b.Run(sim.Time(horizon))
			return b.Node.Engine.Fired(), horizon, vmSnapshot(b.Node.Engine.Fired(), mgr)
		},
	},
	{
		name: "fig17",
		desc: "Tai Chi, density-4 VM startup (lending + reclaim hot path)",
		run: func() (uint64, sim.Duration, *obs.Snapshot) {
			tc := core.NewDefault(perfSeed)
			cfg := cluster.DefaultConfig(4)
			cfg.VMLifetime = 0
			mgr := cluster.NewManager(tc, cfg)
			mgr.Start()
			horizon := 2 * sim.Second
			tc.Run(sim.Time(horizon))
			return tc.Engine().Fired(), horizon, vmSnapshot(tc.Engine().Fired(), mgr)
		},
	},
	{
		name: "chaos",
		desc: "Tai Chi under DefaultSpec faults with ping + CP churn (defense hot path)",
		run: func() (uint64, sim.Duration, *obs.Snapshot) {
			tc := core.NewDefault(perfSeed)
			inj := faults.NewInjector(faults.DefaultSpec())
			inj.Attach(tc)
			node := tc.Node
			pcfg := workload.DefaultPing()
			horizon := 1 * sim.Second
			pcfg.Count = int(horizon / pcfg.Interval)
			p := workload.NewPing(node, pcfg)
			p.Start(nil)
			scfg := controlplane.DefaultSynthCP()
			r := node.Stream("bench.cp")
			for i := 0; i < 8; i++ {
				tc.SpawnCP(fmt.Sprintf("synth%d", i), inj.WrapCP(controlplane.SynthCP(scfg, r)))
			}
			tc.Run(sim.Time(horizon))
			snap := obs.NewSnapshot()
			snap.AddCounter("engine_events", node.Engine.Fired())
			snap.AddHistogram("ping_rtt", p.RTT)
			snap.AddGroup("faults_injected", inj.Counts)
			return node.Engine.Fired(), horizon, snap
		},
	},
	{
		name: "vmstartup",
		desc: "Tai Chi, retrying VM startup under faults, drained to terminal (lifecycle hot path)",
		run: func() (uint64, sim.Duration, *obs.Snapshot) {
			tc := core.NewDefault(perfSeed)
			inj := faults.NewInjector(faults.DefaultSpec())
			inj.Attach(tc)
			cfg := cluster.DefaultConfig(1)
			cfg.VMs = 32
			cfg.VMLifetime = 0
			cfg.Retry = cluster.DefaultRetryPolicy()
			cfg.WrapCP = inj.WrapCP
			mgr := cluster.NewManager(tc, cfg)
			mgr.Start()
			// Drain in fixed chunks until every request is terminal; the
			// bound is a runaway backstop, same idiom as the chaos harness.
			for step := 0; step < 120; step++ {
				tc.Run(tc.Engine().Now().Add(500 * sim.Millisecond))
				if int(mgr.Issued) >= cfg.VMs && mgr.Terminal() {
					break
				}
			}
			return tc.Engine().Fired(), sim.Duration(tc.Engine().Now()), vmSnapshot(tc.Engine().Fired(), mgr)
		},
	},
	{
		name: "overload",
		desc: "Tai Chi, 3x offered load through the admission gate + brownout ladder (overload hot path)",
		run: func() (uint64, sim.Duration, *obs.Snapshot) {
			tc := core.NewDefault(perfSeed)
			tc.Sched.EnableOverload(core.DefaultOverloadPolicy())
			bg := workload.NewBackground(tc.Node, workload.DefaultBackground(0.9))
			bg.Start()
			tc.Engine().At(sim.Time(600*sim.Millisecond), bg.Stop)
			cfg := cluster.DefaultConfig(3)
			cfg.VMs = 48
			cfg.VMLifetime = 0
			cfg.Retry = cluster.DefaultRetryPolicy()
			cfg.Admission = cluster.DefaultAdmissionPolicy()
			cfg.Classify = cluster.DefaultClassify
			cfg.OverloadLevel = func() int { return int(tc.Sched.OverloadState()) }
			mgr := cluster.NewManager(tc, cfg)
			mgr.Start()
			for step := 0; step < 120; step++ {
				tc.Run(tc.Engine().Now().Add(500 * sim.Millisecond))
				if int(mgr.Issued) >= cfg.VMs && mgr.Settled() {
					break
				}
			}
			return tc.Engine().Fired(), sim.Duration(tc.Engine().Now()), vmSnapshot(tc.Engine().Fired(), mgr)
		},
	},
	{
		name: "placement",
		desc: "cluster placer, pressure policy over a 3-node placed fleet (placement + migration hot path)",
		run: func() (uint64, sim.Duration, *obs.Snapshot) {
			const nodes = 3
			members := make([]*placement.ClusterNode, nodes)
			ifaces := make([]placement.Member, nodes)
			for i := 0; i < nodes; i++ {
				tc := core.NewDefault(perfSeed + int64(i))
				tc.Sched.EnableOverload(core.DefaultOverloadPolicy())
				bg := workload.NewBackground(tc.Node, workload.DefaultBackground(0.25))
				bg.Start()
				cfg := cluster.DefaultConfig(1)
				cfg.VMLifetime = 0
				cfg.Retry = cluster.DefaultRetryPolicy()
				cfg.Placement = cluster.DefaultPlacementPolicy()
				mgr := cluster.NewManager(tc, cfg)
				mgr.Start()
				members[i] = placement.NewClusterNode(tc, mgr)
				ifaces[i] = members[i]
			}
			pcfg := placement.DefaultConfig()
			pcfg.VMs = 16
			pcfg.Workers = 1
			eng := placement.NewEngine(perfSeed, pcfg, ifaces)
			st := eng.Run()
			var fired uint64
			startup := metrics.NewHistogram("vm_startup")
			for _, m := range members {
				fired += m.TC.Engine().Fired()
				startup.Merge(m.Mgr.StartupTime)
			}
			snap := obs.NewSnapshot()
			snap.AddCounter("engine_events", fired)
			snap.AddHistogram("vm_startup", startup)
			snap.AddCounter("placement_placed", uint64(st.Placed))
			snap.AddCounter("placement_migrations", uint64(st.MigrationsDone))
			snap.AddCounter("placement_scans", uint64(st.Scans))
			return fired, sim.Duration(members[0].TC.Engine().Now()), snap
		},
	},
}

// vmSnapshot is the shared snapshot shape of the VM-startup scenarios.
func vmSnapshot(fired uint64, mgr *cluster.Manager) *obs.Snapshot {
	snap := obs.NewSnapshot()
	snap.AddCounter("engine_events", fired)
	snap.AddGroup("vm_outcomes", mgr.Outcomes)
	snap.AddHistogram("vm_startup", mgr.StartupTime)
	snap.AddHistogram("vm_cp_exec", mgr.CPExecTime)
	return snap
}

// selectScenarios resolves a comma-separated -scenarios list ("" = all).
func selectScenarios(list string) ([]perfScenario, error) {
	if list == "" {
		return perfScenarios, nil
	}
	var out []perfScenario
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, s := range perfScenarios {
			if s.name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, scenarioNames())
		}
	}
	return out, nil
}

func scenarioNames() string {
	names := make([]string, len(perfScenarios))
	for i, s := range perfScenarios {
		names[i] = s.name
	}
	return strings.Join(names, ", ")
}

// measure runs one scenario iters times and folds the wall/alloc/event
// figures into the BENCH_taichi.json row. Iterations repeat the same
// pinned seed, so the per-op simulation-side fields are exact, not
// averages of different runs.
func measure(s perfScenario, iters int, metricsDir string) (obs.BenchScenario, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //taichi:allow walltime — the perf harness measures wall time by definition; simulation state never sees it
	var events uint64
	var simulated sim.Duration
	var snap *obs.Snapshot
	for i := 0; i < iters; i++ {
		events, simulated, snap = s.run()
	}
	wall := time.Since(start) //taichi:allow walltime — paired with the start stamp above
	runtime.ReadMemStats(&after)

	if metricsDir != "" {
		if err := os.WriteFile(filepath.Join(metricsDir, s.name+".prom"), snap.Prometheus(), 0o644); err != nil {
			return obs.BenchScenario{}, err
		}
		if err := os.WriteFile(filepath.Join(metricsDir, s.name+".json"), snap.JSON(), 0o644); err != nil {
			return obs.BenchScenario{}, err
		}
	}

	nsPerOp := wall.Nanoseconds() / int64(iters)
	if nsPerOp <= 0 {
		nsPerOp = 1
	}
	return obs.BenchScenario{
		Scenario:         s.name,
		Iters:            iters,
		NsPerOp:          nsPerOp,
		EventsPerOp:      events,
		EventsPerSec:     float64(events) * float64(iters) / wall.Seconds(),
		AllocsPerOp:      int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:       int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		SimulatedNsPerOp: int64(simulated),
	}, nil
}

// runPerfHarness is the -benchout entry point: run the pinned
// scenarios, validate the document against the schema, and write
// BENCH_taichi.json.
func runPerfHarness(outPath, scenarios string, iters int, metricsDir string) {
	if iters < 1 {
		iters = 1
	}
	selected, err := selectScenarios(scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	file := obs.BenchFile{Schema: obs.BenchSchema, GoVersion: runtime.Version()}
	for _, s := range selected {
		fmt.Printf("bench %-10s %s\n", s.name, s.desc)
		row, err := measure(s, iters, metricsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %d iter(s): %.1fms/op, %d events/op, %.2fM events/s, %d allocs/op\n",
			row.Iters, float64(row.NsPerOp)/1e6, row.EventsPerOp,
			row.EventsPerSec/1e6, row.AllocsPerOp)
		file.Scenarios = append(file.Scenarios, row)
	}
	data := file.Marshal()
	if _, err := obs.ValidateBench(data); err != nil {
		fmt.Fprintf(os.Stderr, "internal error: generated bench file invalid: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d scenario(s))\n", outPath, len(file.Scenarios))
}

// validateBenchFile is the -validate entry point: parse and
// schema-check an existing BENCH_taichi.json.
func validateBenchFile(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := obs.ValidateBench(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid (%s, %d scenario(s))\n", path, f.Schema, len(f.Scenarios))
}
