// Command taichi-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	taichi-bench                 # run every experiment at full scale
//	taichi-bench -quick          # quarter-scale smoke run
//	taichi-bench -exp fig11,table5
//	taichi-bench -list
//
// Output is plain text: one section per experiment with the same rows
// and series the paper reports. EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	taichi "repro"
)

func main() {
	quick := flag.Bool("quick", false, "run at quarter scale (fast smoke run)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	jsonDir := flag.String("json", "", "also write per-experiment JSON results into this directory")
	flag.Parse()

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *list {
		for _, e := range taichi.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := taichi.Full
	if *quick {
		scale = taichi.Quick
	}

	var selected []taichi.Experiment
	if *exps == "" {
		selected = taichi.Experiments()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e := taichi.ExperimentByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	fmt.Printf("Tai Chi reproduction bench — %d experiment(s), scale=%s\n\n", len(selected), scale.Label)
	for _, e := range selected {
		start := time.Now()
		res := e.Run(scale)
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
		if *jsonDir != "" {
			data, err := res.JSON()
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, e.ID+".json"), data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "json export %s: %v\n", e.ID, err)
			}
		}
	}
}
