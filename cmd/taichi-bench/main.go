// Command taichi-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	taichi-bench                 # run every experiment at full scale
//	taichi-bench -quick          # quarter-scale smoke run
//	taichi-bench -exp fig11,table5
//	taichi-bench -parallel 8     # worker-pool size (default GOMAXPROCS)
//	taichi-bench -list
//
// Perf-regression harness (see OBSERVABILITY.md):
//
//	taichi-bench -benchout BENCH_taichi.json            # all pinned scenarios
//	taichi-bench -benchout BENCH_taichi.json -scenarios fig2,chaos -iters 3
//	taichi-bench -benchout BENCH_taichi.json -metrics-dir out/metrics
//	taichi-bench -validate BENCH_taichi.json            # schema-check an artifact
//
// Output is plain text: one section per experiment with the same rows
// and series the paper reports, printed in registry order regardless of
// the pool size. Experiments are independent deterministic simulations,
// so -parallel changes wall-clock time only, never a single output byte
// (see ARCHITECTURE.md §5). EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	taichi "repro"
)

// outcome is one experiment's buffered output, handed from the worker
// pool to the in-order printer.
type outcome struct {
	text string
	wall time.Duration
	errs []string
}

func main() {
	quick := flag.Bool("quick", false, "run at quarter scale (fast smoke run)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	jsonDir := flag.String("json", "", "also write per-experiment JSON results into this directory")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size for experiments and fleet members (1 = sequential; output is identical either way)")
	benchout := flag.String("benchout", "", "run the pinned perf scenarios and write BENCH_taichi.json here (skips the experiments)")
	scenarios := flag.String("scenarios", "", "comma-separated perf scenarios for -benchout (default: all; see OBSERVABILITY.md)")
	iters := flag.Int("iters", 3, "iterations per perf scenario for -benchout")
	validate := flag.String("validate", "", "schema-check an existing BENCH_taichi.json and exit")
	metricsDir := flag.String("metrics-dir", "", "with -benchout: write per-scenario metrics snapshots (.prom + .json) into this directory")
	flag.Parse()

	if *validate != "" {
		validateBenchFile(*validate)
		return
	}
	if *benchout != "" {
		runPerfHarness(*benchout, *scenarios, *iters, *metricsDir)
		return
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *list {
		for _, e := range taichi.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := taichi.Full
	if *quick {
		scale = taichi.Quick
	}
	// Thread the pool size into the harnesses too, so fleet members and
	// density sweeps inside one experiment fan out as well.
	scale.Workers = *parallel

	var selected []taichi.Experiment
	if *exps == "" {
		selected = taichi.Experiments()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e := taichi.ExperimentByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	fmt.Printf("Tai Chi reproduction bench — %d experiment(s), scale=%s, workers=%d\n\n",
		len(selected), scale.Label, workers)
	start := time.Now() //taichi:allow walltime — total bench wall time for the EXPERIMENTS.md table

	// Run the selected experiments on a bounded pool; each worker buffers
	// its experiment's rendered output so the printer below can emit
	// sections in registry order as they complete.
	outs := make([]chan outcome, len(selected))
	for i := range outs {
		outs[i] = make(chan outcome, 1)
	}
	sem := make(chan struct{}, workers)
	for i, e := range selected {
		i, e := i, e
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			begin := time.Now() //taichi:allow walltime — per-experiment wall time; experiment output depends only on the seed
			res := e.Run(scale)
			o := outcome{wall: time.Since(begin)} //taichi:allow walltime — paired with the begin stamp above
			o.text = res.Render()
			if *jsonDir != "" {
				data, err := res.JSON()
				if err == nil {
					err = os.WriteFile(filepath.Join(*jsonDir, e.ID+".json"), data, 0o644)
				}
				if err != nil {
					o.errs = append(o.errs, fmt.Sprintf("json export %s: %v", e.ID, err))
				}
			}
			outs[i] <- o
		}()
	}
	for i, e := range selected {
		o := <-outs[i]
		fmt.Print(o.text)
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, o.wall.Seconds())
		for _, msg := range o.errs {
			fmt.Fprintln(os.Stderr, msg)
		}
	}
	//taichi:allow walltime — operator-facing total; printed after all deterministic output
	fmt.Printf("total: %.1fs wall\n", time.Since(start).Seconds())
}
