// Command taichi-report renders the JSON results written by
// `taichi-bench -json <dir>` into a single markdown report — a
// regenerable EXPERIMENTS.md-style summary.
//
// Usage:
//
//	taichi-bench -json results/
//	taichi-report results/ > report.md
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type result struct {
	ID     string             `json:"id"`
	Values map[string]float64 `json:"values"`
	Notes  []string           `json:"notes"`
	Tables []string           `json:"tables"`
	Series []string           `json:"series"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: taichi-report <json-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "no .json results in", dir)
		os.Exit(1)
	}

	fmt.Println("# Tai Chi reproduction report")
	fmt.Println()
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var r result
		if err := json.Unmarshal(data, &r); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Printf("## %s\n\n", r.ID)
		for _, t := range r.Tables {
			fmt.Println("```")
			fmt.Print(t)
			fmt.Println("```")
			fmt.Println()
		}
		if len(r.Values) > 0 {
			keys := make([]string, 0, len(r.Values))
			for k := range r.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("| value | measurement |")
			fmt.Println("|---|---|")
			for _, k := range keys {
				fmt.Printf("| `%s` | %g |\n", k, r.Values[k])
			}
			fmt.Println()
		}
		if line := outcomeLine(r.Values); line != "" {
			fmt.Printf("> %s\n\n", line)
		}
		for _, n := range r.Notes {
			fmt.Printf("> %s\n\n", n)
		}
	}
}

// outcomeLine summarizes the request-lifecycle invariant when the
// result carries req_terminal_pct_* values (the chaos experiment's
// request-outcome sweep): every issued VM creation must end completed
// or dead-lettered. It returns "" for results without those keys.
func outcomeLine(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values { //taichi:allow maporder — keys are sorted before iteration below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var levels, drained []string
	dead := 0.0
	for _, k := range keys {
		if !strings.HasPrefix(k, "req_terminal_pct_") {
			continue
		}
		lvl := strings.TrimPrefix(k, "req_terminal_pct_")
		levels = append(levels, lvl)
		if values[k] >= 100 {
			drained = append(drained, lvl)
		}
		dead += values["req_dead_"+lvl]
	}
	if len(levels) == 0 {
		return ""
	}
	if len(drained) == len(levels) {
		return fmt.Sprintf("request lifecycle: all fault levels fully drained — every issued VM creation reached a terminal state (%g dead-lettered fleet-wide)", dead)
	}
	return fmt.Sprintf("request lifecycle: WARNING — only %d/%d fault levels reached 100%% terminal (drained: %s)",
		len(drained), len(levels), strings.Join(drained, ", "))
}
