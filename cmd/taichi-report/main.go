// Command taichi-report renders the JSON artifacts written by the
// other tools into a single markdown report — a regenerable
// EXPERIMENTS.md-style summary. It understands three file shapes and
// dispatches on content, so one directory can mix all of them:
//
//   - experiment results from `taichi-bench -json <dir>`
//   - the perf-harness artifact from `taichi-bench -benchout` (schema
//     "taichi-bench/v1")
//   - metrics snapshots from `taichi-sim -metrics out.json` or
//     `taichi-bench -benchout ... -metrics-dir <dir>`
//
// Usage:
//
//	taichi-bench -json results/
//	taichi-bench -benchout results/BENCH_taichi.json -metrics-dir results/
//	taichi-report results/ > report.md
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

type result struct {
	ID     string             `json:"id"`
	Values map[string]float64 `json:"values"`
	Notes  []string           `json:"notes"`
	Tables []string           `json:"tables"`
	Series []string           `json:"series"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: taichi-report <json-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "no .json results in", dir)
		os.Exit(1)
	}

	fmt.Println("# Tai Chi reproduction report")
	fmt.Println()
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if bench, err := obs.ValidateBench(data); err == nil {
			renderBench(f, bench)
			continue
		}
		if snap, ok := parseSnapshot(data); ok {
			renderSnapshot(f, snap)
			continue
		}
		var r result
		if err := json.Unmarshal(data, &r); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f, err)
			os.Exit(1)
		}
		renderResult(r)
	}
}

// renderResult prints one experiment result section.
func renderResult(r result) {
	fmt.Printf("## %s\n\n", r.ID)
	for _, t := range r.Tables {
		fmt.Println("```")
		fmt.Print(t)
		fmt.Println("```")
		fmt.Println()
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("| value | measurement |")
		fmt.Println("|---|---|")
		for _, k := range keys {
			fmt.Printf("| `%s` | %g |\n", k, r.Values[k])
		}
		fmt.Println()
	}
	if line := outcomeLine(r.Values); line != "" {
		fmt.Printf("> %s\n\n", line)
	}
	if line := retryLine(r.Values); line != "" {
		fmt.Printf("> %s\n\n", line)
	}
	if line := degradedLine(r.Values); line != "" {
		fmt.Printf("> %s\n\n", line)
	}
	if line := overloadLine(r.Values); line != "" {
		fmt.Printf("> %s\n\n", line)
	}
	if line := placementLine(r.Values); line != "" {
		fmt.Printf("> %s\n\n", line)
	}
	for _, n := range r.Notes {
		fmt.Printf("> %s\n\n", n)
	}
}

// renderBench prints a perf-harness artifact as a markdown table. The
// simulation-side columns (events/op, simulated ns/op) are seed-pinned
// and comparable across hosts; the wall-clock columns are not.
func renderBench(name string, f *obs.BenchFile) {
	fmt.Printf("## %s — perf harness (%s, %s)\n\n", name, f.Schema, f.GoVersion)
	fmt.Println("| scenario | iters | ms/op | events/op | Mevents/s | allocs/op | KiB/op | simulated ms/op |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, s := range f.Scenarios {
		fmt.Printf("| %s | %d | %.1f | %d | %.2f | %d | %.0f | %.0f |\n",
			s.Scenario, s.Iters, float64(s.NsPerOp)/1e6, s.EventsPerOp,
			s.EventsPerSec/1e6, s.AllocsPerOp, float64(s.BytesPerOp)/1024,
			float64(s.SimulatedNsPerOp)/1e6)
	}
	fmt.Println()
	fmt.Println("> events/op and simulated ms/op are deterministic (seed-pinned) and double as replay checks; the wall-clock columns vary by host.")
	fmt.Println()
}

// parseSnapshot tries to decode a metrics snapshot. A snapshot is
// recognized by shape: valid JSON object carrying at least one of the
// counters/gauges/histograms arrays and none of the experiment-result
// fields.
func parseSnapshot(data []byte) (*obs.Snapshot, bool) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, false
	}
	if _, isResult := probe["id"]; isResult {
		return nil, false
	}
	_, hasC := probe["counters"]
	_, hasG := probe["gauges"]
	_, hasH := probe["histograms"]
	if !hasC && !hasG && !hasH {
		return nil, false
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, false
	}
	return &snap, true
}

// renderSnapshot prints a metrics snapshot as markdown tables.
func renderSnapshot(name string, s *obs.Snapshot) {
	fmt.Printf("## %s — metrics snapshot\n\n", name)
	if len(s.Counters) > 0 || len(s.Gauges) > 0 {
		fmt.Println("| metric | value |")
		fmt.Println("|---|---|")
		cs := append([]obs.CounterSnap{}, s.Counters...)
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
		for _, c := range cs {
			fmt.Printf("| `%s` | %d |\n", c.Name, c.Value)
		}
		gs := append([]obs.GaugeSnap{}, s.Gauges...)
		sort.SliceStable(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
		for _, g := range gs {
			fmt.Printf("| `%s` | %g |\n", g.Name, g.Value)
		}
		fmt.Println()
	}
	if len(s.Histograms) > 0 {
		fmt.Println("| histogram | count | mean µs | p50 µs | p99 µs | max µs |")
		fmt.Println("|---|---|---|---|---|---|")
		hs := append([]obs.HistogramSnap{}, s.Histograms...)
		sort.SliceStable(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })
		for _, h := range hs {
			fmt.Printf("| `%s` | %d | %.1f | %.1f | %.1f | %.1f |\n",
				h.Name, h.Count, float64(h.MeanNs)/1e3, float64(h.P50Ns)/1e3,
				float64(h.P99Ns)/1e3, float64(h.MaxNs)/1e3)
		}
		fmt.Println()
	}
}

// overloadLine summarizes the overload sweep when the result carries
// ovl_* values: per-class shed totals, whether the brownout ladder
// de-escalated back to normal at every offered-load level, and the
// latency-critical goodput protection (the highest level's goodput as a
// fraction of its issue count). It returns "" for results without those
// keys.
func overloadLine(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values { //taichi:allow maporder — keys are sorted before iteration below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var levels, settled []string
	shedBatch, shedNormal, shedLC := 0.0, 0.0, 0.0
	for _, k := range keys {
		if !strings.HasPrefix(k, "ovl_final_normal_") {
			continue
		}
		lvl := strings.TrimPrefix(k, "ovl_final_normal_")
		levels = append(levels, lvl)
		if values[k] >= 1 {
			settled = append(settled, lvl)
		}
		shedBatch += values["ovl_shed_batch_"+lvl]
		shedNormal += values["ovl_shed_normal_"+lvl]
		shedLC += values["ovl_shed_lc_"+lvl]
	}
	if len(levels) == 0 {
		return ""
	}
	top := levels[len(levels)-1]
	lcIssued := values["ovl_issued_lc_"+top]
	lcDone := values["ovl_goodput_lc_"+top]
	lcPct := 0.0
	if lcIssued > 0 {
		lcPct = 100 * lcDone / lcIssued
	}
	ladder := fmt.Sprintf("ladder de-escalated to normal at %d/%d levels", len(settled), len(levels))
	if len(settled) == len(levels) {
		ladder = "ladder de-escalated to normal at every level"
	}
	return fmt.Sprintf("overload: shed batch=%g normal=%g latency-critical=%g; %s; latency-critical goodput at %s: %g/%g (%.0f%%)",
		shedBatch, shedNormal, shedLC, ladder, top, lcDone, lcIssued, lcPct)
}

// placementLine summarizes the placement sweep when the result carries
// plc_* values: the headline pressure-vs-round-robin comparison (p99
// VM-startup latency and hotspot dwell), the fleet-wide migration count,
// and the audit verdict across every policy. It returns "" for results
// without those keys.
func placementLine(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values { //taichi:allow maporder — keys are sorted before iteration below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var policies []string
	migrations, violations := 0.0, 0.0
	for _, k := range keys {
		if !strings.HasPrefix(k, "plc_settled_") {
			continue
		}
		pol := strings.TrimPrefix(k, "plc_settled_")
		policies = append(policies, pol)
		migrations += values["plc_migrations_done_"+pol]
		violations += values["plc_audit_violations_"+pol]
	}
	if len(policies) == 0 {
		return ""
	}
	auditMsg := "all policy traces replayed audit-clean"
	if violations > 0 {
		auditMsg = fmt.Sprintf("WARNING — %g audit violations", violations)
	}
	pP99, rP99 := values["plc_p99_ms_pressure"], values["plc_p99_ms_rr"]
	pDwell, rDwell := values["plc_dwell_pressure"], values["plc_dwell_rr"]
	verdict := "pressure beat round-robin on p99 startup latency and hotspot dwell"
	if pP99 >= rP99 || pDwell >= rDwell {
		verdict = "WARNING — pressure did not beat round-robin on both p99 and dwell"
	}
	return fmt.Sprintf("placement: p99 pressure=%.0fms vs rr=%.0fms, dwell pressure=%g vs rr=%g — %s; %g live migrations completed fleet-wide; %s",
		pP99, rP99, pDwell, rDwell, verdict, migrations, auditMsg)
}

// outcomeLine summarizes the request-lifecycle invariant when the
// result carries req_terminal_pct_* values (the chaos experiment's
// request-outcome sweep): every issued VM creation must end completed
// or dead-lettered. It returns "" for results without those keys.
func outcomeLine(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values { //taichi:allow maporder — keys are sorted before iteration below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var levels, drained []string
	dead := 0.0
	for _, k := range keys {
		if !strings.HasPrefix(k, "req_terminal_pct_") {
			continue
		}
		lvl := strings.TrimPrefix(k, "req_terminal_pct_")
		levels = append(levels, lvl)
		if values[k] >= 100 {
			drained = append(drained, lvl)
		}
		dead += values["req_dead_"+lvl]
	}
	if len(levels) == 0 {
		return ""
	}
	if len(drained) == len(levels) {
		return fmt.Sprintf("request lifecycle: all fault levels fully drained — every issued VM creation reached a terminal state (%g dead-lettered fleet-wide)", dead)
	}
	return fmt.Sprintf("request lifecycle: WARNING — only %d/%d fault levels reached 100%% terminal (drained: %s)",
		len(drained), len(levels), strings.Join(drained, ", "))
}

// retryLine labels the retry/failover work when the result carries
// req_retried_* values: how many attempts were re-issued after faults
// and how many requests exhausted the policy into the dead-letter
// queue. It returns "" for results without those keys.
func retryLine(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values { //taichi:allow maporder — keys are sorted before iteration below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	retried, dead, issued := 0.0, 0.0, 0.0
	found := false
	for _, k := range keys {
		if !strings.HasPrefix(k, "req_retried_") {
			continue
		}
		found = true
		lvl := strings.TrimPrefix(k, "req_retried_")
		retried += values[k]
		dead += values["req_dead_"+lvl]
		issued += values["req_issued_"+lvl]
	}
	if !found || issued == 0 {
		return ""
	}
	return fmt.Sprintf("retry/failover: %g of %g issued requests needed at least one retry; %g dead-lettered after exhausting the policy",
		retried, issued, dead)
}

// degradedLine summarizes residual damage when the result carries
// degraded_<mode>_<level> markers — the chaos sweeps tag every node-run
// that ends the horizon below normal defense mode. Chaos-shaped results
// without any marker get an explicit all-clear, so a clean sweep is a
// statement rather than an omission. Other results return "".
func degradedLine(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values { //taichi:allow maporder — keys are sorted before iteration below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := map[string]int{}
	var modes []string
	chaosShaped := false
	for _, k := range keys {
		if strings.HasPrefix(k, "detected_") || strings.HasPrefix(k, "rec_fq_dp_") {
			chaosShaped = true
		}
		if !strings.HasPrefix(k, "degraded_") {
			continue
		}
		mode, _, ok := strings.Cut(strings.TrimPrefix(k, "degraded_"), "_")
		if !ok || values[k] == 0 {
			continue
		}
		if counts[mode] == 0 {
			modes = append(modes, mode)
		}
		counts[mode] += int(values[k])
	}
	if len(modes) > 0 {
		parts := make([]string, len(modes))
		for i, m := range modes { //taichi:allow maporder — modes holds first-seen order over sorted keys
			parts[i] = fmt.Sprintf("%s×%d", m, counts[m])
		}
		return fmt.Sprintf("degraded-at-exit: %s — node-runs still below normal mode at the horizon",
			strings.Join(parts, ", "))
	}
	if chaosShaped {
		return "degraded-at-exit: none — every node-run ended the horizon in normal mode"
	}
	return ""
}
